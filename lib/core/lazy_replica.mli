(** Lazy update-everywhere replication — the 1-safe baseline of the paper's
    evaluation (§6), plus its 0-safe degeneration.

    The delegate executes the whole transaction locally under strict
    two-phase locking (reads and writes both charge disk time), flushes the
    decision record, answers the client, and only then propagates the
    writeset to the other servers, which apply it on arrival with no
    ordering and no certification: concurrent updates at different sites
    can leave the copies inconsistent even without failures (§7).

    - {b 1-safe}: the answer follows the local log flush.
    - {b 0-safe}: the answer precedes any disk write — execution happens in
      memory, write-back and logging are asynchronous. *)

type mode = One_safe_mode | Zero_safe_mode

val mode_level : mode -> Safety.level

type t

val create :
  Server.t ->
  group:Net.Node_id.t list ->
  mode:mode ->
  params:Workload.Params.t ->
  ?registry:Obs.Registry.t ->
  ?tracer:Obs.Tracer.t ->
  trace:Sim.Trace.t ->
  unit ->
  t
(** [registry] collects the ack-path counters ([txn.ack_before_disk] for
    0-safe, [txn.ack_after_disk] for 1-safe) plus [lazy.propagations],
    [lazy.remote_applies] and the lifecycle histograms [phase.execute_us],
    [phase.flush_us] and [lazy.propagation_us] (origin commit to remote
    apply); omitted, they land in a private registry. [tracer], when
    enabled, additionally records each phase as a Chrome-trace span on
    this server's track. *)

val submit : t -> Db.Transaction.t -> on_response:(Db.Testable_tx.outcome -> unit) -> unit
(** Execute with this server as delegate. Local deadlocks abort the
    transaction (the response is [Aborted]); lazy propagation has no
    global conflict handling, so remote applies never abort. *)

val serving : t -> bool

val recover : t -> unit
(** Rebuild local state from the server's own log after a restart (lazy
    replication has no group to transfer state from; missed propagations
    stay missing). *)

val committed : t -> Db.Transaction.id -> bool
val committed_count : t -> int
val deadlock_aborts : t -> int
val propagations_applied : t -> int

val cross_site_conflicts : t -> int
(** Remote writesets that conflicted with a concurrent local update of the
    same item — the §7 inconsistency hazard, counted as it happens. *)
