(** Networked clients.

    A client is a network node of its own: it sends the transaction to a
    delegate server over the simulated LAN, waits for the reply, and on
    timeout {b retries the same transaction (same id) at the next server}.
    Because the servers implement testable transactions (paper §2.2), a
    retry of a transaction that already committed is answered from the
    recorded outcome instead of executing again — the client observes
    exactly-once semantics even when its delegate crashes mid-flight. *)

type t

type response =
  | Replied of Db.Testable_tx.outcome  (** a server answered. *)
  | Gave_up
      (** [max_attempts] attempts all timed out; the transaction's true
          outcome is unknown to this client (it may still have committed
          server-side — resubmitting the same id later is safe thanks to
          testable transactions). *)

val create :
  System.t ->
  index:int ->
  ?retry_timeout:Sim.Sim_time.span ->
  ?max_attempts:int ->
  unit ->
  t
(** [create sys ~index ()] attaches client [index] ("C<index>") to the
    system's network. [retry_timeout] defaults to 500 ms, [max_attempts]
    to 10. *)

val submit :
  t -> ?delegate:int -> Db.Transaction.t -> on_outcome:(response -> unit) -> unit
(** [submit c tx ~on_outcome] sends [tx] to [delegate] (default: round
    robin) and calls [on_outcome] exactly once: with [Replied _] when a
    reply arrives — possibly after retries at other servers — or with
    [Gave_up] after [max_attempts] silent attempts. *)

val completed : t -> int
(** Transactions for which an outcome arrived. *)

val retries : t -> int
(** Resubmissions performed so far (0 when every first attempt answers). *)

val gave_up : t -> int
(** Transactions abandoned with {!Gave_up} after [max_attempts]. *)

val in_flight : t -> int

val node_id : t -> Net.Node_id.t
(** The client's own network identity (for fault injection in tests). *)
