let after sys span f = ignore (Sim.Engine.schedule (System.engine sys) ~delay:span f)

let crash_at sys ~after:span i = after sys span (fun () -> System.crash sys i)
let recover_at sys ~after:span i = after sys span (fun () -> System.recover sys i)

let crash_all_at sys ~after:span =
  after sys span (fun () ->
      for i = 0 to System.n_servers sys - 1 do
        System.crash sys i
      done)

let recover_all_at sys ~after:span =
  after sys span (fun () ->
      for i = 0 to System.n_servers sys - 1 do
        System.recover sys i
      done)

let crash_storm sys ~rng ~duration ~max_down ~mean_up ~mean_down =
  let deadline = Sim.Sim_time.add (System.now sys) duration in
  let down = ref 0 in
  (* One independent stream per server, split up front: a server's draws
     depend only on the seed and its index, never on how the servers'
     events interleave, so storm schedules replay under perturbation. *)
  let rec schedule_crash i server_rng =
    let delay = Sim.Rng.exponential_span server_rng ~mean:mean_up in
    after sys delay (fun () ->
        if Sim.Sim_time.(System.now sys < deadline) then begin
          if !down < max_down && System.alive sys i then begin
            incr down;
            System.crash sys i;
            let outage = Sim.Rng.exponential_span server_rng ~mean:mean_down in
            after sys outage (fun () ->
                decr down;
                System.recover sys i;
                schedule_crash i server_rng)
          end
          else schedule_crash i server_rng
        end)
  in
  for i = 0 to System.n_servers sys - 1 do
    schedule_crash i (Sim.Rng.split rng)
  done
