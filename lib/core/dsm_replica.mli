(** The database state machine replication technique (paper §2.1, Figs. 2
    and 8), parameterised by safety level.

    Update-everywhere, non-voting, single network interaction: the delegate
    executes the transaction's reads locally, then atomically broadcasts
    the writeset (with its certification snapshot); every server certifies
    delivered writesets deterministically in delivery order and applies the
    committed ones, so no voting phase is needed. Writesets are processed
    by an in-order pipeline per server — total order forces sequential
    application, which is what eventually queues under load.

    The three modes differ only in the instant the delegate answers the
    client, and in the broadcast primitive underneath:

    - {b Group-safe} (Fig. 8): answer at the certification decision;
      logging and the write-back of pages happen asynchronously, with the
      write-scheduling gain asynchrony buys (paper §5.1). Classical atomic
      broadcast; recovery by state transfer.
    - {b Group-1-safe} (Fig. 2): answer once the delegate has applied the
      writes and flushed the decision record. Classical atomic broadcast.
    - {b 2-safe} (§4.3): end-to-end atomic broadcast; every server
      acknowledges successful delivery after logging, and the delegate
      answers once every available server has logged the transaction. *)

type mode = Group_safe_mode | Group_one_safe_mode | Two_safe_mode | Very_safe_mode

val mode_level : mode -> Safety.level

val broadcast_family : mode -> [ `Classical | `End_to_end ]
(** Which broadcast primitive the mode needs: the group-safe pair runs on
    classical atomic broadcast, the 2-safe pair on end-to-end atomic
    broadcast. Runtime switching is possible within a family (§5.2). *)

type t

val create :
  Server.t ->
  group:Net.Node_id.t list ->
  mode:mode ->
  params:Workload.Params.t ->
  ?fd_config:Gcs.Failure_detector.config ->
  ?apply_write_factor:float ->
  ?uniform:bool ->
  ?tuning:Gcs.Bcast_tuning.t ->
  ?delivery_delay:(unit -> Sim.Sim_time.span) ->
  ?registry:Obs.Registry.t ->
  ?tracer:Obs.Tracer.t ->
  trace:Sim.Trace.t ->
  unit ->
  t
(** [create server ~group ~mode ~params ~trace ()] attaches the replica to
    [server]. [apply_write_factor] scales the disk service time of ordered
    writeset application (default 0.625: ordered write-back still coalesces
    some adjacent pages); the group-safe mode's background flushes use the
    database engine's own asynchronous factor. [uniform] (classical modes
    only, default [true]) selects uniform delivery in the ordering
    protocol; [false] is the ablation that invalidates group-safety.
    [delivery_delay], when given, installs a deterministic
    {!Gcs.Delivery_delay} gate between the broadcast's decide point and
    this replica's processing pipeline — the schedule explorer's message
    delay knob; absent, delivery is immediate as in production.

    [registry] collects this replica's lifecycle histograms
    ([phase.read_us], [phase.broadcast_us], [phase.certify_us],
    [phase.wal_us]), the Fig.-9 ack-path counters ([txn.ack_before_disk]
    vs [txn.ack_after_disk]) and the broadcast stack's [abcast.*]/
    [e2e.*]/[log.*] counters; omitted, they land in a private registry.
    [tracer], when enabled, additionally records each phase as a
    Chrome-trace span on this server's track. *)

val submit : t -> Db.Transaction.t -> on_response:(Db.Testable_tx.outcome -> unit) -> unit
(** Run the transaction with this server as delegate. [on_response] fires
    at the mode's answer instant; it never fires if the delegate crashes
    first, and submissions to a recovering server are dropped. Read-only
    transactions answer after the local read phase, without broadcast. *)

val serving : t -> bool
(** Up and not recovering. *)

val mode : t -> mode

val set_mode : t -> mode -> unit
(** Switch the response rule at runtime — the paper notes group-1-safe and
    group-safe can be swapped on the fly (§5.2). Effective for writesets
    processed from now on; a relaxation may immediately release waiting
    responses. @raise Invalid_argument when the new mode needs the other
    broadcast primitive ({!broadcast_family}). *)

val committed : t -> Db.Transaction.id -> bool
(** Whether this replica's current (group-consistent) view includes the
    transaction as committed. *)

val committed_count : t -> int
val certifier : t -> Db.Certifier.t
val cold_starts : t -> int
(** Times this replica restarted the group from local state. *)

val pipeline_depth : t -> int
(** Writesets queued for in-order processing right now. *)

val is_leading : t -> bool
(** Whether this replica's broadcast stack currently leads the ordering
    protocol — progress evidence for the liveness oracle. *)

val break_no_accept_retransmit : t -> unit
(** Oracle-mutation hook: disable in-flight Accept retransmission in this
    replica's ordering log, reintroducing the PR 2 wedged-slot bug for the
    liveness storms to rediscover. Test-only. *)
