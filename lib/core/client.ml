type response = Replied of Db.Testable_tx.outcome | Gave_up

type pending = {
  tx : Db.Transaction.t;
  mutable attempts : int;
  mutable answered : bool;
  on_outcome : response -> unit;
}

type t = {
  sys : System.t;
  endpoint : Net.Endpoint.t;
  process : Sim.Process.t;
  retry_timeout : Sim.Sim_time.span;
  max_attempts : int;
  pending : (Db.Transaction.id, pending) Hashtbl.t;
  mutable next_delegate : int;
  mutable completed : int;
  mutable retries : int;
  mutable gave_up : int;
}

(* Client node indexes live above the server range so they never collide. *)
let client_node_index sys index = System.n_servers sys + index

let handle_reply t tx_id outcome =
  match Hashtbl.find_opt t.pending tx_id with
  | None -> ()
  | Some p ->
    if not p.answered then begin
      p.answered <- true;
      Hashtbl.remove t.pending tx_id;
      t.completed <- t.completed + 1;
      p.on_outcome (Replied outcome)
    end

let create sys ~index ?(retry_timeout = Sim.Sim_time.span_ms 500.) ?(max_attempts = 10) () =
  let engine = System.engine sys in
  let label = Printf.sprintf "C%d" index in
  let id = Net.Node_id.make ~index:(client_node_index sys index) ~label in
  let process = Sim.Process.create engine ~name:label in
  let endpoint = Net.Endpoint.attach (System.network sys) ~id ~process () in
  let t =
    {
      sys;
      endpoint;
      process;
      retry_timeout;
      max_attempts;
      pending = Hashtbl.create 16;
      next_delegate = index mod System.n_servers sys;
      completed = 0;
      retries = 0;
      gave_up = 0;
    }
  in
  Net.Endpoint.add_handler endpoint (fun message ->
      match message.Net.Message.payload with
      | Client_protocol.Client_reply { tx_id; outcome } ->
        handle_reply t tx_id outcome;
        true
      | _ -> false);
  t

let rec attempt t p ~delegate =
  p.attempts <- p.attempts + 1;
  Net.Endpoint.send t.endpoint
    ~dst:(System.server_id t.sys delegate)
    (Client_protocol.Client_request { tx = p.tx });
  ignore
    (Sim.Process.after t.process t.retry_timeout (fun () ->
         if (not p.answered) && Hashtbl.mem t.pending p.tx.Db.Transaction.id then begin
           if p.attempts < t.max_attempts then begin
             t.retries <- t.retries + 1;
             (* Try the next server; the transaction keeps its id, so a
                server that already processed it answers from its testable
                transaction record instead of running it twice. *)
             attempt t p ~delegate:((delegate + 1) mod System.n_servers t.sys)
           end
           else begin
             (* Out of attempts: tell the caller explicitly instead of
                going silent — an application cannot distinguish "still
                retrying" from "abandoned" on its own. *)
             p.answered <- true;
             Hashtbl.remove t.pending p.tx.Db.Transaction.id;
             t.gave_up <- t.gave_up + 1;
             p.on_outcome Gave_up
           end
         end))

let submit t ?delegate tx ~on_outcome =
  let delegate =
    match delegate with
    | Some d -> d
    | None ->
      let d = t.next_delegate in
      t.next_delegate <- (d + 1) mod System.n_servers t.sys;
      d
  in
  let p = { tx; attempts = 0; answered = false; on_outcome } in
  Hashtbl.replace t.pending tx.Db.Transaction.id p;
  attempt t p ~delegate

let node_id t = Net.Endpoint.id t.endpoint
let completed t = t.completed
let retries t = t.retries
let gave_up t = t.gave_up
let in_flight t = Hashtbl.length t.pending
