(** The safety oracle.

    After a run (including any injected crashes and recoveries), the
    checker compares what clients were told against what the system still
    holds: a transaction is {b lost} when a client was told it committed
    yet no live server's current view has it. Read-only transactions are
    exempt — they commit without writing anything, so there is no durable
    effect to lose. It also measures replica
    {b divergence} (items whose values differ across serving servers —
    lazy replication's failure-free hazard, §7) and classifies each
    server's crash behaviour (green / yellow / red, Fig. 3).

    Losses are then confronted with the technique's advertised safety
    level: {!consistent_with_level} says whether the observed outcome is
    allowed by Tables 2 and 3 given what actually failed. *)

type lost_tx = {
  tx : Db.Transaction.id;
  acked_at : Sim.Sim_time.t;  (** when the client was told "committed". *)
}

type report = {
  horizon : Sim.Sim_time.t;
  level : Safety.level;  (** the technique's advertised level. *)
  acked_commits : int;  (** transactions acknowledged as committed. *)
  surviving : int;  (** of those, still present on some live server. *)
  lost : lost_tx list;  (** of those, present nowhere live. *)
  group_failed : bool;  (** a majority was down at some point. *)
  divergent_items : int;  (** items with conflicting values across serving servers. *)
  classes : (string * Gcs.Process_class.t) list;  (** per-server behaviour class. *)
}

val divergent_items : System.t -> int
(** Items whose values differ across the currently serving servers (0 with
    fewer than two serving servers). Also available inside {!analyse}'s
    report; exported for the healing-convergence oracle
    ({!Convergence}). *)

val analyse : System.t -> report
(** Inspect the system as it stands now. Run the simulation to quiescence
    (e.g. a second or two past the last activity) first, or in-flight work
    will be reported as lost. *)

val losses_allowed : report -> delegate_crashed:(Db.Transaction.id -> bool) -> bool
(** Whether every observed loss is permitted by the level's loss condition
    (Table 3 / {!Safety.lost_if}) given the run's failures.
    [delegate_crashed tx] tells whether the transaction's delegate crashed
    during the run. *)

val pp_report : Format.formatter -> report -> unit
