(** Fault injection schedules.

    Thin helpers for scripting crash/recovery patterns against a
    {!System.t} — delays are relative to "now" at scheduling time — plus a
    random crash storm for robustness testing. The named experiment
    schedules (Fig. 5, Tables 2/3) live in the harness, built from these. *)

val after : System.t -> Sim.Sim_time.span -> (unit -> unit) -> unit
(** Run a thunk at [now + span]. *)

val crash_at : System.t -> after:Sim.Sim_time.span -> int -> unit
val recover_at : System.t -> after:Sim.Sim_time.span -> int -> unit

val crash_all_at : System.t -> after:Sim.Sim_time.span -> unit
(** Crash every server at the given instant — the group failure. *)

val recover_all_at : System.t -> after:Sim.Sim_time.span -> unit

val crash_storm :
  System.t ->
  rng:Sim.Rng.t ->
  duration:Sim.Sim_time.span ->
  max_down:int ->
  mean_up:Sim.Sim_time.span ->
  mean_down:Sim.Sim_time.span ->
  unit
(** Randomly crash and recover servers for [duration]: each server stays up
    an exponential [mean_up] then, if fewer than [max_down] servers are
    currently down, crashes for an exponential [mean_down]. With
    [max_down < quorum] the group never fails.

    The caller-supplied [rng] is {!Sim.Rng.split} once per server before
    anything is scheduled, and each server draws only from its own stream.
    A server's crash/recovery instants therefore depend on nothing but the
    seed and its own index — not on how the servers' events interleave —
    so a storm can be re-executed independently (e.g. while shrinking a
    failing schedule, or with one server perturbed) without moving every
    other server's schedule. The pre-fix behaviour drew from one shared
    stream in event order, which made storms unreplayable under any
    perturbation. *)
