(** A whole replicated database: engine, network, servers, replicas.

    One [System.t] is one simulated deployment running one replication
    technique. It owns the virtual clock, offers submission and fault
    injection, and records everything the safety checker and the metrics
    need. Deterministic for a given seed. *)

type technique =
  | Dsm of Dsm_replica.mode  (** the database state machine technique. *)
  | Lazy of Lazy_replica.mode  (** lazy update-everywhere propagation. *)
  | Two_pc
      (** traditional eager replication over two-phase commit — the
          baseline the paper's introduction argues against. *)

val technique_level : technique -> Safety.level
val technique_name : technique -> string

val all_techniques : technique list
(** Every implemented technique, weakest safety first. *)

val technique_of_level : Safety.level -> technique
(** The canonical technique advertising each safety level — the uniform
    factory the schedule explorer and the table experiments build systems
    from: lazy replication for the 0/1-safe levels, the DSM stack for the
    group levels, 2-safe and very-safe. (2PC also advertises 2-safe; ask
    for it explicitly with {!Two_pc}.) *)

type t

val create :
  ?seed:int64 ->
  ?params:Workload.Params.t ->
  ?fd_config:Gcs.Failure_detector.config ->
  ?apply_write_factor:float ->
  ?uniform:bool ->
  ?tuning:Gcs.Bcast_tuning.t ->
  ?trace_enabled:bool ->
  ?obs_trace:bool ->
  ?delivery_delay:(int -> (unit -> Sim.Sim_time.span) option) ->
  technique ->
  t
(** [create technique] builds the full system: [params.servers] servers on
    a LAN per the parameters, each running the technique's replica stack.
    [trace_enabled] (default [true]) can be switched off for long
    performance runs. [obs_trace] (default [false]) arms the observability
    tracer: every transaction and per-phase span is then captured for
    Chrome-trace export (see {!obs_tracer}). [uniform] (default [true])
    keeps uniform delivery in the ordering protocol; [false] is the
    DESIGN.md ablation. [tuning] selects the broadcast-engine tuning
    (batching, pipelining window, dissemination backend — see
    {!Gcs.Bcast_tuning}) for the DSM techniques' ordering layer; default
    is the seed engine. [delivery_delay], given a server index, may return
    a deterministic extra-delay thunk installed as that server's broadcast
    delivery gate (see {!Gcs.Delivery_delay}); like [tuning], it only
    affects the DSM techniques — lazy propagation and 2PC have no ordering
    layer to gate. *)

val partition : t -> int list list -> unit
(** Install a network partition between server groups (by index); servers
    left out form an implicit last group. Traced as ["partition"]. *)

val heal : t -> unit
(** Restore full connectivity (removes partitions and blocked links; see
    {!Net.Network.heal}). Traced as ["heal"]. *)

val set_drop : t -> float option -> unit
(** Open ([Some p]) or close ([None]) a message-loss window: while open,
    every message is dropped independently with probability [p],
    overriding the configured drop probability. Traced as
    ["drop_window"]. *)

val duplicate_next : t -> int -> unit
(** Mark server [i] so the next message transmitted to it is delivered
    twice — the dedup layers (testable transactions, broadcast UID
    tables) must absorb the duplicate. Traced as ["duplicate_next"]. *)

val engine : t -> Sim.Engine.t
val network : t -> Net.Network.t
val params : t -> Workload.Params.t
val trace : t -> Sim.Trace.t
val metrics : t -> Workload.Metrics.t
val technique : t -> technique
val level : t -> Safety.level
val n_servers : t -> int

val obs_registry : t -> Obs.Registry.t
(** The system-wide metrics registry. All replicas share it: protocol
    counters ([abcast.*], [log.*], [e2e.*], [lazy.*], [2pc.*]), the
    ack-path discriminators ([txn.ack_before_disk] / [txn.ack_after_disk])
    and per-phase latency histograms ([phase.*]) aggregate here, next to
    the system-level [txn.submitted]/[txn.committed]/[txn.aborted] counters
    and [txn.commit_us]/[txn.abort_us] histograms. *)

val obs_tracer : t -> Obs.Tracer.t
(** The span tracer (enabled iff [create ~obs_trace:true]). Feed its
    events to {!Obs.Chrome_trace} for a chrome://tracing / Perfetto
    timeline. *)

val attach_obs_samplers : ?every:Sim.Sim_time.span -> t -> unit
(** Sample every server's CPU and disk queue depth and utilisation into
    the registry ([res.cpu.*], [res.disk.*]) every [every] (default
    100 ms) of virtual time. Samplers reschedule themselves forever, so
    only attach before bounded [run_for] advances. Sampling reads resource
    state without consuming randomness or mutating anything: simulation
    results are byte-identical with or without it. *)

val submit :
  t -> ?on_response:(Db.Testable_tx.outcome -> unit) -> delegate:int -> Db.Transaction.t -> unit
(** Submit with server [delegate]. The response (if any arrives) is
    recorded in the metrics and in the acknowledgement table; the optional
    callback fires too. Submissions to a dead or recovering delegate are
    dropped silently (the client would time out). Metrics and the
    acknowledgement table count each transaction id once, so client
    retries do not double-count. *)

val server_id : t -> int -> Net.Node_id.t
(** The network identity of server [i] — servers also answer
    {!Client} requests sent to this id. *)

val run_for : t -> Sim.Sim_time.span -> unit
(** Advance the simulation by the given amount of virtual time. *)

val now : t -> Sim.Sim_time.t

val crash : t -> int -> unit
(** Crash server [i] (traced; idempotent). *)

val recover : t -> int -> unit
(** Restart server [i] (traced; idempotent). *)

val alive : t -> int -> bool
val serving : t -> int -> bool

val submitted : t -> int
(** Transactions submitted so far. *)

type ack = {
  tx : Db.Transaction.id;
  outcome : Db.Testable_tx.outcome;
  at : Sim.Sim_time.t;  (** when the client heard the outcome. *)
  update : bool;
      (** whether the transaction wrote anything. A read-only commit
          leaves no durable effect, so there is nothing of it to lose. *)
}

val acked : t -> ack list
(** Every response ever given to a client (the god's-eye record the safety
    checker starts from), in response order. *)

type submission = {
  sub_tx : Db.Transaction.id;
  sub_at : Sim.Sim_time.t;  (** when the client submitted. *)
  sub_delegate : int;
  sub_delegate_serving : bool;
      (** whether the delegate was serving at submission time: a
          submission to a dead or recovering server is dropped silently
          (the client would time out), so no decision is owed for it. *)
}

val submissions : t -> submission list
(** Every distinct transaction id ever submitted (first submission wins;
    client retries do not duplicate), in submission order — the other half
    of the liveness oracle's books: [submissions] owed, {!acked} paid. *)

val acked_id : t -> Db.Transaction.id -> bool
(** Whether a response for this transaction id was ever given. *)

val has_ordering_layer : t -> bool
(** Whether the technique runs an ordering (broadcast) protocol whose
    leadership the liveness oracle can observe — true for the DSM stack,
    false for lazy propagation and 2PC. *)

val leaders : t -> int list
(** Indices of serving replicas whose ordering log currently holds an
    established leadership (empty for techniques without an ordering
    layer). After quiescence on a healed majority there must be at least
    one — the takeover evidence the liveness oracle checks. *)

val committed_on : t -> server:int -> Db.Transaction.id -> bool
(** Whether server [server]'s current replica view has the transaction
    committed. *)

val values_of : t -> server:int -> int array
(** Server [server]'s current in-memory database contents. *)

val history : t -> int -> Gcs.Process_class.history
(** Server [i]'s crash/recovery history up to now. *)

val group_failed : t -> bool
(** Whether at any point so far a majority of servers was down
    simultaneously (the group-failure condition of Tables 2 and 3). *)

val dsm_replica : t -> int -> Dsm_replica.t option
val lazy_replica : t -> int -> Lazy_replica.t option
val twopc_replica : t -> int -> Twopc_replica.t option

val inject_storage_fault : t -> int -> Db.Db_engine.fault -> unit
(** Arm (or perform) a storage fault on server [i]'s WAL — the single
    fault surface behind the storage nemesis ({!Check.Schedule} events
    [Torn_write], [Fsync_lie], [Corrupt_record]) and the legacy wipe
    hooks. Traced as ["torn_write"], ["fsync_lie"], ["corrupt_record"],
    ["wal_wipe"] or ["amnesia"]. See {!Db.Db_engine.fault}. *)

val break_amnesiac : t -> int -> unit
(** Deliberately break server [i]: from now on, every crash also wipes its
    durable write-ahead log, so the server recovers remembering nothing it
    ever logged. No real technique behaves like this — the hook exists to
    mutation-test the safety oracle itself (a checker that cannot catch an
    amnesiac 2-safe replica losing an acknowledged transaction is not
    checking anything). Thin alias for
    [inject_storage_fault t i Wipe_wal_at_crash]; traced as ["amnesia"]. *)

val set_disk_slow : t -> int -> float -> unit
(** Gray failure on server [i]: scale its WAL flush durations by the
    factor (1.0 heals). Traced as ["slow_disk"]. *)

val set_disk_full : t -> int -> bool -> unit
(** Disk-full window on server [i]: while set, its WAL appends park
    (volatile) and the replica refuses new update transactions with a
    distinct abort while continuing to serve reads and group traffic.
    Traced as ["disk_full"]. *)

val break_skip_checksum : t -> int -> unit
(** Oracle-mutation hook: disable WAL checksum verification on server
    [i]'s recovery, modelling an unhardened log that replays rotted bytes.
    The durability oracle must notice the shortfall
    ([corrupt_detected < corrupt_scanned]). Traced as ["skip_checksum"]. *)

val storage_faults : t -> int -> Db.Db_engine.fault_stats
(** Server [i]'s cumulative storage-fault and repair evidence. *)

val last_repair : t -> int -> Db.Db_engine.repair_report option
(** The report of server [i]'s most recent WAL recovery scan. *)

val break_no_accept_retransmit : t -> int -> unit
(** Oracle-mutation hook: disable in-flight Accept retransmission in
    server [i]'s ordering log (no-op for techniques without one),
    reintroducing the PR 2 wedged-slot liveness bug. A liveness oracle
    that cannot catch a leader silently abandoning a dropped Accept is not
    checking anything. Traced as ["no_accept_retransmit"]. *)

val break_early_decision : t -> int -> unit
(** Oracle-mutation hook: make server [i]'s 2PC replica answer decision
    requests from its in-memory view with an empty write set (no-op for
    other techniques), reintroducing the PR 2 early-decision divergence
    bug. Traced as ["early_decision"]. *)

val set_dsm_mode : t -> Dsm_replica.mode -> unit
(** Switch every DSM replica's response rule at runtime (paper §5.2): e.g.
    group-safe under normal operation, group-1-safe while the group looks
    fragile. A no-op on lazy systems.
    @raise Invalid_argument across broadcast families
    (see {!Dsm_replica.set_mode}). *)
