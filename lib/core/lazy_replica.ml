type mode = One_safe_mode | Zero_safe_mode

let mode_level = function One_safe_mode -> Safety.One_safe | Zero_safe_mode -> Safety.Zero_safe

type Net.Message.payload +=
  | Lazy_ws of {
      ws : Db.Transaction.writeset;
      started_at : Sim.Sim_time.t;
      committed_at : Sim.Sim_time.t;
    }

type t = {
  server : Server.t;
  mode : mode;
  trace : Sim.Trace.t;
  others : Net.Node_id.t list;
  view : Db.Testable_tx.t;
  (* Last locally-committed update of each item, as a (start, commit)
     interval — used to detect cross-site concurrent conflicts (§7). *)
  local_commits : (int, Sim.Sim_time.t * Sim.Sim_time.t) Hashtbl.t;
  mutable ready : bool;
  mutable deadlock_aborts : int;
  mutable propagations : int;
  mutable cross_site_conflicts : int;
  c_ack_before_disk : Obs.Registry.counter;
  c_ack_after_disk : Obs.Registry.counter;
  c_propagations : Obs.Registry.counter;
  c_remote_applies : Obs.Registry.counter;
  o_tracer : Obs.Tracer.t;
  h_execute : Obs.Histogram.t;  (* submit -> 2PL execution done *)
  h_flush : Obs.Histogram.t;  (* local commit -> decision record durable *)
  h_apply : Obs.Histogram.t;  (* origin commit -> remote apply (propagation lag) *)
}

let tr t kind attrs = Sim.Trace.record t.trace ~source:(Server.label t.server) ~kind attrs
let guard t k = Sim.Process.guard t.server.Server.process k

let outcome_string = function
  | Db.Testable_tx.Committed -> "committed"
  | Db.Testable_tx.Aborted -> "aborted"

let respond t tx outcome ~on_response =
  tr t "respond" [ ("tx", string_of_int tx); ("outcome", outcome_string outcome) ];
  on_response outcome

let now t = Sim.Engine.now (Db.Db_engine.engine t.server.Server.db)

(* Record one lifecycle phase [from_, until) into its histogram and, when
   tracing, as a complete span on this server's track — the same shape
   Dsm_replica gives its phases, so lazy and group-safe Chrome traces line
   up side by side. *)
let observe_phase t h ~name ~tx ~from_ ~until =
  let dur = Sim.Sim_time.diff until from_ in
  Obs.Histogram.add h (Sim.Sim_time.span_to_us dur);
  Obs.Tracer.complete t.o_tracer ~name
    ~cat:(Safety.to_string (mode_level t.mode))
    ~tid:t.server.Server.index ~ts:from_ ~dur
    ~args:[ ("tx", string_of_int tx) ]
    ()

let propagate t ws ~started_at =
  Obs.Registry.inc t.c_propagations;
  tr t "propagate" [ ("tx", string_of_int ws.Db.Transaction.tx_id) ];
  Net.Endpoint.broadcast t.server.Server.endpoint ~to_:t.others
    (Lazy_ws { ws; started_at; committed_at = now t })

(* Remote application: install on arrival, no ordering, no certification —
   last writer wins, which is exactly why lazy replication can diverge. *)
let apply_remote t ws ~started_at ~committed_at =
  let tx = ws.Db.Transaction.tx_id in
  if not (Db.Testable_tx.already_processed t.view tx) then begin
    let db = t.server.Server.db in
    let writes = ws.Db.Transaction.write_values in
    (* §7 hazard: this remote update ran concurrently with a local update
       of the same item — neither site saw the other. *)
    let conflicting (item, _) =
      match Hashtbl.find_opt t.local_commits item with
      | Some (local_start, local_commit) ->
        Sim.Sim_time.(started_at < local_commit) && Sim.Sim_time.(local_start < committed_at)
      | None -> false
    in
    if List.exists conflicting writes then begin
      t.cross_site_conflicts <- t.cross_site_conflicts + 1;
      tr t "cross_site_conflict" [ ("tx", string_of_int tx) ]
    end;
    (* Propagation lag: how long the remote commit stayed invisible here. *)
    observe_phase t t.h_apply ~name:"apply" ~tx ~from_:committed_at ~until:(now t);
    Db.Db_engine.install_writes db writes;
    Db.Testable_tx.record t.view tx Db.Testable_tx.Committed;
    Db.Testable_tx.record (Db.Db_engine.testable db) tx Db.Testable_tx.Committed;
    Db.Db_engine.log_commit_quiet db ~tx ~decision:Db.Certifier.Commit ~writes;
    Db.Db_engine.write_io db ~count:(List.length writes) ~factor:(Db.Db_engine.async_factor db)
      ~k:(fun () -> ());
    t.propagations <- t.propagations + 1;
    Obs.Registry.inc t.c_remote_applies;
    tr t "apply" [ ("tx", string_of_int tx) ]
  end

let serving t = Sim.Process.alive t.server.Server.process && t.ready

(* Execute operations in program order under strict 2PL. The continuation
   receives [`Done] or [`Deadlock]. *)
let execute_ops t tx ~k =
  let db = t.server.Server.db in
  let locks = Db.Db_engine.locks db in
  let id = tx.Db.Transaction.id in
  let rec step ops =
    match ops with
    | [] -> k `Done
    | op :: rest ->
      let item = Db.Op.item op in
      let mode =
        if Db.Op.is_write op then Db.Lock_table.Exclusive else Db.Lock_table.Shared
      in
      let continue () =
        match op with
        | Db.Op.Read _ -> Db.Db_engine.read db ~item ~k:(fun _ -> step rest)
        | Db.Op.Write _ -> step rest
      in
      (match Db.Lock_table.acquire locks ~tx:id ~item ~mode ~granted:(guard t continue) with
       | `Ok -> ()
       | `Deadlock -> k `Deadlock)
  in
  step tx.Db.Transaction.ops

let finish_commit t tx ~started_at ~on_response =
  let db = t.server.Server.db in
  let id = tx.Db.Transaction.id in
  let commit_at = now t in
  let ws = Db.Transaction.to_writeset tx in
  let writes = ws.Db.Transaction.write_values in
  let count = List.length writes in
  Db.Db_engine.install_writes db writes;
  List.iter (fun (item, _) -> Hashtbl.replace t.local_commits item (started_at, now t)) writes;
  Db.Testable_tx.record t.view id Db.Testable_tx.Committed;
  Db.Testable_tx.record (Db.Db_engine.testable db) id Db.Testable_tx.Committed;
  let release () = Db.Lock_table.release_all (Db.Db_engine.locks db) ~tx:id in
  match t.mode with
  | Zero_safe_mode ->
    (* Answer before anything is durable. *)
    Obs.Registry.inc t.c_ack_before_disk;
    respond t id Db.Testable_tx.Committed ~on_response;
    Db.Db_engine.log_commit db ~tx:id ~decision:Db.Certifier.Commit ~writes
      ~k:
        (guard t (fun () ->
             observe_phase t t.h_flush ~name:"flush" ~tx:id ~from_:commit_at ~until:(now t);
             tr t "logged" [ ("tx", string_of_int id) ]));
    Db.Db_engine.write_io db ~count ~factor:(Db.Db_engine.async_factor db) ~k:(fun () -> ());
    release ();
    if writes <> [] then propagate t ws ~started_at
  | One_safe_mode ->
    (* Answer once the local writes and the decision record are on disk. *)
    let written = ref false and flushed = ref false in
    let maybe_finish () =
      if !written && !flushed then begin
        Obs.Registry.inc t.c_ack_after_disk;
        respond t id Db.Testable_tx.Committed ~on_response;
        release ();
        if writes <> [] then propagate t ws ~started_at
      end
    in
    Db.Db_engine.log_commit db ~tx:id ~decision:Db.Certifier.Commit ~writes
      ~k:
        (guard t (fun () ->
             observe_phase t t.h_flush ~name:"flush" ~tx:id ~from_:commit_at ~until:(now t);
             tr t "logged" [ ("tx", string_of_int id) ];
             flushed := true;
             maybe_finish ()));
    Db.Db_engine.write_io db ~count ~factor:1.0
      ~k:
        (guard t (fun () ->
             written := true;
             maybe_finish ()))

let submit t tx ~on_response =
  if serving t then begin
    let id = tx.Db.Transaction.id in
    if Db.Transaction.is_update tx && Db.Db_engine.disk_full t.server.Server.db then begin
      (* Graceful degradation under a full disk: refuse new update work
         with a distinct abort; reads and remote propagation continue. *)
      tr t "disk_full_abort" [ ("tx", string_of_int id) ];
      Db.Db_engine.note_degraded t.server.Server.db;
      on_response Db.Testable_tx.Aborted
    end
    else begin
    tr t "submit" [ ("tx", string_of_int id) ];
    let started_at = now t in
    execute_ops t tx ~k:(fun result ->
        observe_phase t t.h_execute ~name:"execute" ~tx:id ~from_:started_at ~until:(now t);
        match result with
        | `Deadlock ->
          t.deadlock_aborts <- t.deadlock_aborts + 1;
          Db.Lock_table.release_all (Db.Db_engine.locks t.server.Server.db) ~tx:id;
          Db.Testable_tx.record t.view id Db.Testable_tx.Aborted;
          respond t id Db.Testable_tx.Aborted ~on_response
        | `Done ->
          if Db.Transaction.is_update tx then finish_commit t tx ~started_at ~on_response
          else begin
            Db.Lock_table.release_all (Db.Db_engine.locks t.server.Server.db) ~tx:id;
            respond t id Db.Testable_tx.Committed ~on_response
          end)
    end
  end

let recover t =
  let report = Db.Db_engine.recover_now t.server.Server.db in
  if report.Db.Db_engine.repairs <> [] then
    tr t "wal_repair" [ ("repairs", string_of_int (List.length report.Db.Db_engine.repairs)) ];
  Db.Testable_tx.replace t.view (Db.Testable_tx.to_list (Db.Db_engine.testable t.server.Server.db));
  tr t "recovered_local" [];
  t.ready <- true

let create server ~group ~mode ~params ?registry ?tracer ~trace () =
  ignore params;
  let registry = match registry with Some r -> r | None -> Obs.Registry.create () in
  let o_tracer =
    match tracer with Some tr -> tr | None -> Obs.Tracer.create ~enabled:false ()
  in
  let self = Net.Endpoint.id server.Server.endpoint in
  let others = List.filter (fun n -> not (Net.Node_id.equal n self)) group in
  let t =
    {
      server;
      mode;
      trace;
      others;
      view = Db.Testable_tx.create ();
      local_commits = Hashtbl.create 256;
      ready = true;
      deadlock_aborts = 0;
      propagations = 0;
      cross_site_conflicts = 0;
      c_ack_before_disk = Obs.Registry.counter registry "txn.ack_before_disk";
      c_ack_after_disk = Obs.Registry.counter registry "txn.ack_after_disk";
      c_propagations = Obs.Registry.counter registry "lazy.propagations";
      c_remote_applies = Obs.Registry.counter registry "lazy.remote_applies";
      o_tracer;
      h_execute = Obs.Registry.histogram registry "phase.execute_us";
      h_flush = Obs.Registry.histogram registry "phase.flush_us";
      h_apply = Obs.Registry.histogram registry "lazy.propagation_us";
    }
  in
  Net.Endpoint.add_handler server.Server.endpoint (fun message ->
      match message.Net.Message.payload with
      | Lazy_ws { ws; started_at; committed_at } ->
        apply_remote t ws ~started_at ~committed_at;
        true
      | _ -> false);
  Sim.Process.on_kill server.Server.process (fun () ->
      t.ready <- false;
      Hashtbl.reset t.local_commits;
      Db.Testable_tx.reset t.view);
  Sim.Process.on_restart server.Server.process (fun () -> recover t);
  t

let committed t id =
  match Db.Testable_tx.find t.view id with
  | Some Db.Testable_tx.Committed -> true
  | Some Db.Testable_tx.Aborted | None -> false

let committed_count t = Db.Testable_tx.committed_count t.view
let deadlock_aborts t = t.deadlock_aborts
let propagations_applied t = t.propagations
let cross_site_conflicts t = t.cross_site_conflicts
