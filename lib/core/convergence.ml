type missing = { server : int; tx : Db.Transaction.id }

type verdict = {
  checked_at : Sim.Sim_time.t;
  acked_updates : int;
  serving_servers : int list;
  missing : missing list;
  divergent_items : int;
  probe_committed : bool;
  probe_ms : float option;
  converged : bool;
}

let default_probe_bound = Sim.Sim_time.span_s 2.
let default_probe_tx_id = 1_000_000

let certify ?(probe_bound = default_probe_bound) ?(probe_tx_id = default_probe_tx_id) sys =
  let n = System.n_servers sys in
  let serving_servers = List.filter (System.serving sys) (List.init n Fun.id) in
  let acked_updates =
    List.filter_map
      (fun { System.tx; outcome; update; _ } ->
        match outcome with
        | Db.Testable_tx.Committed when update -> Some tx
        | Db.Testable_tx.Committed | Db.Testable_tx.Aborted -> None)
      (System.acked sys)
  in
  (* The probe runs *first*, deliberately: a server that sat out a
     partition only learns what it missed when a fresh decision reaches it
     (a chosen-slot gap triggers its catch-up request), so the probe is
     both the liveness check and the nudge that completes state transfer.
     Holes and divergence are measured after the probe bound elapses. *)
  let probe_outcome = ref None in
  let probe_started = System.now sys in
  (match serving_servers with
  | [] -> ()
  | delegate :: _ ->
    let item = Int.max 0 (System.params sys).Workload.Params.items - 1 in
    let tx = Db.Transaction.make ~id:probe_tx_id ~client:0 [ Db.Op.Write (item, 1) ] in
    System.submit sys ~delegate
      ~on_response:(fun o -> probe_outcome := Some (o, System.now sys))
      tx;
    System.run_for sys probe_bound);
  let probe_committed =
    match !probe_outcome with Some (Db.Testable_tx.Committed, _) -> true | _ -> false
  in
  let probe_ms =
    match !probe_outcome with
    | Some (_, at) -> Some (Sim.Sim_time.span_to_ms (Sim.Sim_time.diff at probe_started))
    | None -> None
  in
  (* Convergence is stronger than loss-freedom: every acknowledged update
     must be present on *every* serving server, not merely somewhere. *)
  let missing =
    List.concat_map
      (fun server ->
        List.filter_map
          (fun tx ->
            if System.committed_on sys ~server tx then None else Some { server; tx })
          acked_updates)
      serving_servers
  in
  let divergent_items = Safety_checker.divergent_items sys in
  {
    checked_at = System.now sys;
    acked_updates = List.length acked_updates;
    serving_servers;
    missing;
    divergent_items;
    probe_committed;
    probe_ms;
    converged = missing = [] && divergent_items = 0 && probe_committed;
  }

let pp ppf v =
  Format.fprintf ppf
    "@[<v>converged: %b@ acked updates: %d on %d serving servers@ missing replications: %d@ \
     divergent items: %d@ probe: %s@]"
    v.converged v.acked_updates
    (List.length v.serving_servers)
    (List.length v.missing) v.divergent_items
    (match (v.probe_committed, v.probe_ms) with
    | true, Some ms -> Printf.sprintf "committed in %.1f ms" ms
    | true, None -> "committed"
    | false, Some ms -> Printf.sprintf "failed after %.1f ms" ms
    | false, None -> "no response within bound")
