(** The safety-criteria lattice (paper §2.1 and §5, Tables 1–3).

    A safety level states what is guaranteed at the instant the client is
    told its transaction committed:

    - {b 0-safe}: the transaction reached one server; nothing is logged.
    - {b 1-safe}: it is logged on the delegate only (classic lazy).
    - {b group-safe}: the message carrying it is guaranteed to be delivered
      on all available servers; possibly logged nowhere. Durability is the
      group's responsibility.
    - {b group-1-safe}: group-safe and logged on the delegate.
    - {b 2-safe}: logged on all available servers.
    - {b very safe}: logged on all servers — a single crash blocks commits,
      so the level is impractical (§2.1) and included for completeness. *)

type level = Zero_safe | One_safe | Group_safe | Group_one_safe | Two_safe | Very_safe

val all : level list
(** Every level, weakest first. *)

val to_string : level -> string
val of_string : string -> level option
val pp : Format.formatter -> level -> unit
val equal : level -> level -> bool

type delivered_guarantee = Delivered_one | Delivered_all
type logged_guarantee = Logged_none | Logged_one | Logged_all

val delivered_guarantee : level -> delivered_guarantee
(** Table 1, vertical axis: on how many servers is delivery of the message
    guaranteed at notification time. *)

val logged_guarantee : level -> logged_guarantee
(** Table 1, horizontal axis: on how many servers is the transaction
    guaranteed to be logged at notification time. *)

val classify : delivered:delivered_guarantee -> logged:logged_guarantee -> level option
(** Table 1 as a lookup: the safety level of a technique with the given
    guarantees. [None] for the impossible cell ([Delivered_one],
    [Logged_all]): a transaction cannot be logged where it was not
    delivered. Very-safe shares the ([Delivered_all], [Logged_all]) cell
    with 2-safe and is not returned. *)

type crash_tolerance = Tolerates_none | Tolerates_minority | Tolerates_all

val crash_tolerance : level -> crash_tolerance
(** Table 2: how many server crashes the level survives without the
    possibility of losing an acknowledged transaction. [Tolerates_minority]
    means fewer than [n] crashes — the group must not fail. *)

val lost_if : level -> group_failed:bool -> delegate_crashed:bool -> bool
(** Table 3 (generalised to every level): can an acknowledged transaction
    be lost under the given failure condition? [group_failed] means too
    many servers crashed for the group to survive (here: all of them, per
    the paper's Fig. 5 scenario where stable storage is what remains);
    [delegate_crashed] whether the transaction's delegate was among the
    crashed. *)

val description : level -> string
(** One sentence on what the client acknowledgement means. *)
