(** Eager update-everywhere replication over two-phase commit — the
    traditional technique the paper's introduction contrasts with
    group-communication replication ("slow and deadlock prone", after Gray
    et al.'s dangers of replication).

    The delegate executes the transaction under local strict 2PL, then
    coordinates a 2PC round: every replica acquires exclusive locks on the
    written items, force-logs a prepare record and votes; on unanimous yes
    the coordinator force-logs the decision, answers the client and
    broadcasts commit. The client answer therefore implies the transaction
    is durably prepared on {e every} server — 2-safe — but:

    - a write conflict between concurrent coordinators at two sites blocks
      lock queues in opposite orders at different participants: a
      {e distributed deadlock}, resolved only by timeouts (counted);
    - one unreachable participant stalls the vote and forces an abort —
      commit availability requires every server;
    - a participant that crashes after voting yes recovers {e in doubt}
      and must ask the coordinator for the decision; while the coordinator
      is down the transaction stays blocked with its locks held (the
      classic 2PC blocking problem). *)

type t

val create :
  Server.t ->
  group:Net.Node_id.t list ->
  params:Workload.Params.t ->
  ?lock_timeout:Sim.Sim_time.span ->
  ?vote_timeout:Sim.Sim_time.span ->
  ?registry:Obs.Registry.t ->
  ?tracer:Obs.Tracer.t ->
  trace:Sim.Trace.t ->
  unit ->
  t
(** [create server ~group ~params ~trace ()] attaches the replica.
    [lock_timeout] (default 300 ms) bounds a participant's wait for write
    locks before voting no; [vote_timeout] (default 1 s) bounds the
    coordinator's wait for votes before aborting. [registry] collects
    [2pc.prepares_sent], [2pc.votes] and [txn.ack_after_disk], plus the
    internal-phase histograms [2pc.prepare_force_us] (2PC start to
    coordinator prepare record durable), [2pc.vote_gather_us] (votes
    solicited to decision), [2pc.decision_flush_us] (decision to commit
    record durable) and [2pc.participant_prepare_us] (prepare received to
    vote sent); omitted, they land in a private registry. [tracer], when
    enabled, additionally records each phase as a Chrome-trace span on
    this server's track. *)

val submit : t -> Db.Transaction.t -> on_response:(Db.Testable_tx.outcome -> unit) -> unit
(** Execute with this server as coordinator. The response arrives after
    the full 2PC round: [Committed] on unanimous yes votes, [Aborted] on a
    local deadlock, a no vote, or a vote timeout. *)

val serving : t -> bool
val recover : t -> unit

val committed : t -> Db.Transaction.id -> bool
val committed_count : t -> int

val deadlock_aborts : t -> int
(** Transactions aborted by local deadlock detection or lock timeouts —
    the distributed-deadlock casualties. *)

val vote_timeouts : t -> int
(** Coordinator-side aborts caused by missing votes. *)

val in_doubt : t -> int
(** Transactions currently prepared on this replica without a known
    decision (blocked if the coordinator is down). *)

val break_early_decision : t -> unit
(** Oracle-mutation hook: answer decision requests for committed
    transactions from the in-memory view (with an empty write set) instead
    of the durable WAL, reintroducing the PR 2 divergence bug for the
    liveness storms to rediscover. Test-only. *)
