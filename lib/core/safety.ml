type level = Zero_safe | One_safe | Group_safe | Group_one_safe | Two_safe | Very_safe

let all = [ Zero_safe; One_safe; Group_safe; Group_one_safe; Two_safe; Very_safe ]

let to_string = function
  | Zero_safe -> "0-safe"
  | One_safe -> "1-safe"
  | Group_safe -> "group-safe"
  | Group_one_safe -> "group-1-safe"
  | Two_safe -> "2-safe"
  | Very_safe -> "very-safe"

let of_string s =
  List.find_opt (fun l -> String.equal (to_string l) (String.lowercase_ascii s)) all

let pp ppf l = Format.pp_print_string ppf (to_string l)

let equal a b =
  match (a, b) with
  | Zero_safe, Zero_safe
  | One_safe, One_safe
  | Group_safe, Group_safe
  | Group_one_safe, Group_one_safe
  | Two_safe, Two_safe
  | Very_safe, Very_safe ->
    true
  | (Zero_safe | One_safe | Group_safe | Group_one_safe | Two_safe | Very_safe), _ -> false

type delivered_guarantee = Delivered_one | Delivered_all
type logged_guarantee = Logged_none | Logged_one | Logged_all

let delivered_guarantee = function
  | Zero_safe | One_safe -> Delivered_one
  | Group_safe | Group_one_safe | Two_safe | Very_safe -> Delivered_all

let logged_guarantee = function
  | Zero_safe | Group_safe -> Logged_none
  | One_safe | Group_one_safe -> Logged_one
  | Two_safe | Very_safe -> Logged_all

let classify ~delivered ~logged =
  match (delivered, logged) with
  | Delivered_one, Logged_none -> Some Zero_safe
  | Delivered_one, Logged_one -> Some One_safe
  | Delivered_one, Logged_all -> None (* a transaction is logged only where delivered *)
  | Delivered_all, Logged_none -> Some Group_safe
  | Delivered_all, Logged_one -> Some Group_one_safe
  | Delivered_all, Logged_all -> Some Two_safe

type crash_tolerance = Tolerates_none | Tolerates_minority | Tolerates_all

let crash_tolerance = function
  | Zero_safe | One_safe -> Tolerates_none
  | Group_safe | Group_one_safe -> Tolerates_minority
  | Two_safe | Very_safe -> Tolerates_all

let lost_if level ~group_failed ~delegate_crashed =
  match level with
  | Zero_safe | One_safe -> delegate_crashed
  | Group_safe -> group_failed
  | Group_one_safe -> group_failed && delegate_crashed
  | Two_safe | Very_safe -> false

let description = function
  | Zero_safe -> "the transaction reached its delegate server; nothing is durable yet"
  | One_safe -> "the transaction is logged on the delegate server only"
  | Group_safe ->
    "the message carrying the transaction is guaranteed to be delivered on all available \
     servers; durability rests on the group"
  | Group_one_safe ->
    "group-safe, and additionally the transaction is logged on the delegate server"
  | Two_safe -> "the transaction is logged on all available servers"
  | Very_safe -> "the transaction is logged on every server, available or not"
