type lost_tx = { tx : Db.Transaction.id; acked_at : Sim.Sim_time.t }

type report = {
  horizon : Sim.Sim_time.t;
  level : Safety.level;
  acked_commits : int;
  surviving : int;
  lost : lost_tx list;
  group_failed : bool;
  divergent_items : int;
  classes : (string * Gcs.Process_class.t) list;
}

let divergent_items sys =
  let serving =
    List.filter (System.serving sys) (List.init (System.n_servers sys) Fun.id)
  in
  match serving with
  | [] | [ _ ] -> 0
  | first :: rest ->
    let reference = System.values_of sys ~server:first in
    let views = List.map (fun s -> System.values_of sys ~server:s) rest in
    let differs = ref 0 in
    Array.iteri
      (fun item v -> if List.exists (fun view -> view.(item) <> v) views then incr differs)
      reference;
    !differs

let analyse sys =
  let n = System.n_servers sys in
  let live = List.filter (System.alive sys) (List.init n Fun.id) in
  let acked_committed =
    List.filter_map
      (fun { System.tx; outcome; at; update } ->
        match outcome with
        | Db.Testable_tx.Committed -> Some (tx, at, update)
        | Db.Testable_tx.Aborted -> None)
      (System.acked sys)
  in
  let lost =
    List.filter_map
      (fun (tx, at, update) ->
        (* Loss is about durable effects: an acknowledged *update* that no
           live server holds any more. A read-only transaction commits
           without writing anything, so it trivially survives. *)
        let survives =
          (not update) || List.exists (fun s -> System.committed_on sys ~server:s tx) live
        in
        if survives then None else Some { tx; acked_at = at })
      acked_committed
  in
  let horizon = System.now sys in
  let classes =
    List.init n (fun i ->
        ( Printf.sprintf "S%d" i,
          Gcs.Process_class.classify ~horizon (System.history sys i) ))
  in
  {
    horizon;
    level = System.level sys;
    acked_commits = List.length acked_committed;
    surviving = List.length acked_committed - List.length lost;
    lost;
    group_failed = System.group_failed sys;
    divergent_items = divergent_items sys;
    classes;
  }

let losses_allowed report ~delegate_crashed =
  List.for_all
    (fun { tx; _ } ->
      Safety.lost_if report.level ~group_failed:report.group_failed
        ~delegate_crashed:(delegate_crashed tx))
    report.lost

let pp_report ppf r =
  Format.fprintf ppf "@[<v>level: %a@ acked commits: %d@ surviving: %d@ lost: %d@ "
    Safety.pp r.level r.acked_commits r.surviving (List.length r.lost);
  Format.fprintf ppf "group failed: %b@ divergent items: %d@ classes:" r.group_failed
    r.divergent_items;
  List.iter
    (fun (s, c) -> Format.fprintf ppf " %s=%a" s Gcs.Process_class.pp c)
    r.classes;
  Format.fprintf ppf "@]"
