type technique = Dsm of Dsm_replica.mode | Lazy of Lazy_replica.mode | Two_pc

let technique_level = function
  | Dsm m -> Dsm_replica.mode_level m
  | Lazy m -> Lazy_replica.mode_level m
  | Two_pc -> Safety.Two_safe

let technique_name = function
  | Two_pc -> "eager-2pc"
  | (Dsm _ | Lazy _) as t -> Safety.to_string (technique_level t)

let all_techniques =
  [
    Lazy Lazy_replica.Zero_safe_mode;
    Lazy Lazy_replica.One_safe_mode;
    Dsm Dsm_replica.Group_safe_mode;
    Dsm Dsm_replica.Group_one_safe_mode;
    Dsm Dsm_replica.Two_safe_mode;
    Dsm Dsm_replica.Very_safe_mode;
    Two_pc;
  ]

let technique_of_level = function
  | Safety.Zero_safe -> Lazy Lazy_replica.Zero_safe_mode
  | Safety.One_safe -> Lazy Lazy_replica.One_safe_mode
  | Safety.Group_safe -> Dsm Dsm_replica.Group_safe_mode
  | Safety.Group_one_safe -> Dsm Dsm_replica.Group_one_safe_mode
  | Safety.Two_safe -> Dsm Dsm_replica.Two_safe_mode
  | Safety.Very_safe -> Dsm Dsm_replica.Very_safe_mode

type replica = Dsm_r of Dsm_replica.t | Lazy_r of Lazy_replica.t | Tpc_r of Twopc_replica.t

type ack = {
  tx : Db.Transaction.id;
  outcome : Db.Testable_tx.outcome;
  at : Sim.Sim_time.t;
  update : bool;
}

type submission = {
  sub_tx : Db.Transaction.id;
  sub_at : Sim.Sim_time.t;
  sub_delegate : int;
  sub_delegate_serving : bool;
}



type t = {
  engine : Sim.Engine.t;
  network : Net.Network.t;
  params : Workload.Params.t;
  trace : Sim.Trace.t;
  metrics : Workload.Metrics.t;
  technique : technique;
  servers : Server.t array;
  replicas : replica array;
  mutable submitted : int;
  mutable acked_rev : ack list;
  acked_ids : (Db.Transaction.id, unit) Hashtbl.t;
  mutable subs_rev : submission list;
  sub_ids : (Db.Transaction.id, unit) Hashtbl.t;
  crashes : Sim.Sim_time.t list ref array;
  recoveries : Sim.Sim_time.t list ref array;
  mutable max_simultaneously_down : int;
  mutable currently_down : int;
  obs_registry : Obs.Registry.t;
  obs_tracer : Obs.Tracer.t;
  c_submitted : Obs.Registry.counter;
  c_committed : Obs.Registry.counter;
  c_aborted : Obs.Registry.counter;
  h_commit_us : Obs.Histogram.t;
  h_abort_us : Obs.Histogram.t;
}

let engine t = t.engine
let network t = t.network
let params t = t.params
let trace t = t.trace
let metrics t = t.metrics
let technique t = t.technique
let level t = technique_level t.technique
let n_servers t = Array.length t.servers
let obs_registry t = t.obs_registry
let obs_tracer t = t.obs_tracer

let serving t i =
  match t.replicas.(i) with
  | Dsm_r r -> Dsm_replica.serving r
  | Lazy_r r -> Lazy_replica.serving r
  | Tpc_r r -> Twopc_replica.serving r

let alive t i = Server.alive t.servers.(i)

let submit t ?on_response ~delegate tx =
  t.submitted <- t.submitted + 1;
  Obs.Registry.inc t.c_submitted;
  let submitted_at = Sim.Engine.now t.engine in
  (* First submission of each id wins: a client retry of a decided tx must
     not resurrect it as "undecided" in the liveness oracle's books. *)
  if not (Hashtbl.mem t.sub_ids tx.Db.Transaction.id) then begin
    Hashtbl.replace t.sub_ids tx.Db.Transaction.id ();
    t.subs_rev <-
      {
        sub_tx = tx.Db.Transaction.id;
        sub_at = submitted_at;
        sub_delegate = delegate;
        sub_delegate_serving = serving t delegate;
      }
      :: t.subs_rev
  end;
  let respond outcome =
    (* Retried transactions answer at most once into the books. *)
    if not (Hashtbl.mem t.acked_ids tx.Db.Transaction.id) then begin
      let acked_at = Sim.Engine.now t.engine in
      Hashtbl.replace t.acked_ids tx.Db.Transaction.id ();
      t.acked_rev <-
        {
          tx = tx.Db.Transaction.id;
          outcome;
          at = acked_at;
          update = Db.Transaction.is_update tx;
        }
        :: t.acked_rev;
      Workload.Metrics.record_response t.metrics ~submitted:submitted_at;
      let latency = Sim.Sim_time.diff acked_at submitted_at in
      Obs.Tracer.complete t.obs_tracer ~name:"txn"
        ~cat:(technique_name t.technique)
        ~tid:delegate ~ts:submitted_at ~dur:latency
        ~args:
          [
            ("tx", string_of_int tx.Db.Transaction.id);
            ( "outcome",
              match outcome with
              | Db.Testable_tx.Committed -> "committed"
              | Db.Testable_tx.Aborted -> "aborted" );
          ]
        ();
      match outcome with
      | Db.Testable_tx.Committed ->
        Obs.Registry.inc t.c_committed;
        Obs.Histogram.add t.h_commit_us (Sim.Sim_time.span_to_us latency);
        Workload.Metrics.record_commit t.metrics
      | Db.Testable_tx.Aborted ->
        Obs.Registry.inc t.c_aborted;
        Obs.Histogram.add t.h_abort_us (Sim.Sim_time.span_to_us latency);
        Workload.Metrics.record_abort t.metrics
    end;
    match on_response with Some k -> k outcome | None -> ()
  in
  match t.replicas.(delegate) with
  | Dsm_r r -> Dsm_replica.submit r tx ~on_response:respond
  | Lazy_r r -> Lazy_replica.submit r tx ~on_response:respond
  | Tpc_r r -> Twopc_replica.submit r tx ~on_response:respond

let server_id t i = t.servers.(i).Server.id

let partition t groups =
  Sim.Trace.record t.trace ~source:"net" ~kind:"partition"
    [
      ( "groups",
        String.concat "|"
          (List.map (fun g -> String.concat "," (List.map string_of_int g)) groups) );
    ];
  Net.Network.partition t.network
    (List.map (List.map (fun i -> t.servers.(i).Server.id)) groups)

let heal t =
  Sim.Trace.record t.trace ~source:"net" ~kind:"heal" [];
  Net.Network.heal t.network

let set_drop t p =
  Sim.Trace.record t.trace ~source:"net" ~kind:"drop_window"
    [ ("prob", match p with Some p -> Printf.sprintf "%.3f" p | None -> "off") ];
  Net.Network.set_drop t.network p

let duplicate_next t i =
  Sim.Trace.record t.trace ~source:"net" ~kind:"duplicate_next"
    [ ("server", string_of_int i) ];
  Net.Network.duplicate_next t.network t.servers.(i).Server.id

(* Server-side frontend: answer client requests over the network. *)
let attach_frontends t =
  Array.iteri
    (fun i server ->
      Net.Endpoint.add_handler server.Server.endpoint (fun message ->
          match message.Net.Message.payload with
          | Client_protocol.Client_request { tx } ->
            let client = message.Net.Message.src in
            submit t ~delegate:i
              ~on_response:(fun outcome ->
                Net.Endpoint.send server.Server.endpoint ~dst:client
                  (Client_protocol.Client_reply { tx_id = tx.Db.Transaction.id; outcome }))
              tx;
            true
          | _ -> false))
    t.servers

let create ?(seed = 1L) ?(params = Workload.Params.table4) ?fd_config ?apply_write_factor
    ?uniform ?tuning ?(trace_enabled = true) ?(obs_trace = false)
    ?(delivery_delay = fun _ -> None) technique =
  let engine = Sim.Engine.create ~seed () in
  let net_config =
    {
      Net.Network.transit = params.Workload.Params.network_transit;
      cpu_per_op = params.Workload.Params.cpu_per_net_op;
      drop_probability = params.Workload.Params.drop_probability;
    }
  in
  let network = Net.Network.create engine net_config in
  let trace = Sim.Trace.create ~enabled:trace_enabled engine in
  let metrics = Workload.Metrics.create engine in
  let n = params.Workload.Params.servers in
  (* One registry and one tracer per system: all replicas (and their
     database engines, hence creation before the servers) share them, so
     per-server observations of the same metric aggregate (tracer spans
     stay distinguishable through their tid = server index). *)
  let obs_registry = Obs.Registry.create () in
  let obs_tracer = Obs.Tracer.create ~enabled:obs_trace () in
  let servers =
    Array.init n (fun index -> Server.create ~registry:obs_registry engine network params ~index)
  in
  let group = Array.to_list (Array.map (fun s -> s.Server.id) servers) in
  let replicas =
    Array.mapi
      (fun index server ->
        match technique with
        | Dsm mode ->
          Dsm_r
            (Dsm_replica.create server ~group ~mode ~params ?fd_config ?apply_write_factor
               ?uniform ?tuning ?delivery_delay:(delivery_delay index) ~registry:obs_registry
               ~tracer:obs_tracer ~trace ())
        | Lazy mode ->
          Lazy_r
            (Lazy_replica.create server ~group ~mode ~params ~registry:obs_registry
               ~tracer:obs_tracer ~trace ())
        | Two_pc ->
          Tpc_r
            (Twopc_replica.create server ~group ~params ~registry:obs_registry
               ~tracer:obs_tracer ~trace ()))
      servers
  in
  let t = {
    engine;
    network;
    params;
    trace;
    metrics;
    technique;
    servers;
    replicas;
    submitted = 0;
    acked_rev = [];
    acked_ids = Hashtbl.create 1024;
    subs_rev = [];
    sub_ids = Hashtbl.create 1024;
    crashes = Array.init n (fun _ -> ref []);
    recoveries = Array.init n (fun _ -> ref []);
    max_simultaneously_down = 0;
    currently_down = 0;
    obs_registry;
    obs_tracer;
    c_submitted = Obs.Registry.counter obs_registry "txn.submitted";
    c_committed = Obs.Registry.counter obs_registry "txn.committed";
    c_aborted = Obs.Registry.counter obs_registry "txn.aborted";
    h_commit_us = Obs.Registry.histogram obs_registry "txn.commit_us";
    h_abort_us = Obs.Registry.histogram obs_registry "txn.abort_us";
  }
  in
  attach_frontends t;
  t

(* Queue-depth / utilisation sampling for every server's CPU and disk.
   Metric names are shared across servers, so the samples aggregate into
   one system-wide distribution per resource kind. Sampler ticks read but
   never mutate simulation state, so results are unchanged. *)
let attach_obs_samplers ?(every = Sim.Sim_time.span_ms 100.) t =
  Array.iter
    (fun server ->
      Obs.Sampler.attach t.engine ~registry:t.obs_registry ~name:"res.cpu" ~every
        server.Server.cpus;
      Obs.Sampler.attach t.engine ~registry:t.obs_registry ~name:"res.disk" ~every
        server.Server.disks)
    t.servers


let run_for t span = Sim.Engine.run ~until:(Sim.Sim_time.add (Sim.Engine.now t.engine) span) t.engine
let now t = Sim.Engine.now t.engine

let crash t i =
  if Server.alive t.servers.(i) then begin
    Sim.Trace.record t.trace ~source:(Server.label t.servers.(i)) ~kind:"crash" [];
    t.crashes.(i) := Sim.Engine.now t.engine :: !(t.crashes.(i));
    t.currently_down <- t.currently_down + 1;
    if t.currently_down > t.max_simultaneously_down then
      t.max_simultaneously_down <- t.currently_down;
    Server.crash t.servers.(i)
  end

let recover t i =
  if not (Server.alive t.servers.(i)) then begin
    Sim.Trace.record t.trace ~source:(Server.label t.servers.(i)) ~kind:"recover" [];
    t.recoveries.(i) := Sim.Engine.now t.engine :: !(t.recoveries.(i));
    t.currently_down <- t.currently_down - 1;
    Server.restart t.servers.(i)
  end

let submitted t = t.submitted
let acked t = List.rev t.acked_rev
let submissions t = List.rev t.subs_rev
let acked_id t id = Hashtbl.mem t.acked_ids id

let has_ordering_layer t =
  match t.technique with Dsm _ -> true | Lazy _ | Two_pc -> false

let leaders t =
  let out = ref [] in
  Array.iteri
    (fun i r ->
      match r with
      | Dsm_r r -> if Dsm_replica.serving r && Dsm_replica.is_leading r then out := i :: !out
      | Lazy_r _ | Tpc_r _ -> ())
    t.replicas;
  List.rev !out

let committed_on t ~server id =
  match t.replicas.(server) with
  | Dsm_r r -> Dsm_replica.committed r id
  | Lazy_r r -> Lazy_replica.committed r id
  | Tpc_r r -> Twopc_replica.committed r id

let values_of t ~server = Db.Db_engine.values_snapshot t.servers.(server).Server.db

let history t i =
  {
    Gcs.Process_class.crashes = List.rev !(t.crashes.(i));
    recoveries = List.rev !(t.recoveries.(i));
    up_at_end = Server.alive t.servers.(i);
  }

let group_failed t =
  t.max_simultaneously_down >= Gcs.View.quorum (Array.length t.servers)

let storage_fault_kind = function
  | Db.Db_engine.Wipe_wal -> "wal_wipe"
  | Db.Db_engine.Wipe_wal_at_crash -> "amnesia"
  | Db.Db_engine.Torn_write -> "torn_write"
  | Db.Db_engine.Fsync_lie -> "fsync_lie"
  | Db.Db_engine.Corrupt_record -> "corrupt_record"

let inject_storage_fault t i fault =
  let server = t.servers.(i) in
  Sim.Trace.record t.trace ~source:(Server.label server) ~kind:(storage_fault_kind fault) [];
  Db.Db_engine.inject server.Server.db fault

let break_amnesiac t i = inject_storage_fault t i Db.Db_engine.Wipe_wal_at_crash

let set_disk_slow t i factor =
  let server = t.servers.(i) in
  Sim.Trace.record t.trace ~source:(Server.label server) ~kind:"slow_disk"
    [ ("factor", Printf.sprintf "%.3f" factor) ];
  Db.Db_engine.set_disk_slow server.Server.db factor

let set_disk_full t i full =
  let server = t.servers.(i) in
  Sim.Trace.record t.trace ~source:(Server.label server) ~kind:"disk_full"
    [ ("full", if full then "on" else "off") ];
  Db.Db_engine.set_disk_full server.Server.db full

let break_skip_checksum t i =
  let server = t.servers.(i) in
  Sim.Trace.record t.trace ~source:(Server.label server) ~kind:"skip_checksum" [];
  Db.Db_engine.break_skip_checksum server.Server.db

let storage_faults t i = Db.Db_engine.fault_stats t.servers.(i).Server.db
let last_repair t i = Db.Db_engine.last_repair t.servers.(i).Server.db

let break_no_accept_retransmit t i =
  match t.replicas.(i) with
  | Dsm_r r ->
    Sim.Trace.record t.trace ~source:(Server.label t.servers.(i)) ~kind:"no_accept_retransmit" [];
    Dsm_replica.break_no_accept_retransmit r
  | Lazy_r _ | Tpc_r _ -> ()

let break_early_decision t i =
  match t.replicas.(i) with
  | Tpc_r r ->
    Sim.Trace.record t.trace ~source:(Server.label t.servers.(i)) ~kind:"early_decision" [];
    Twopc_replica.break_early_decision r
  | Dsm_r _ | Lazy_r _ -> ()

let dsm_replica t i = match t.replicas.(i) with Dsm_r r -> Some r | Lazy_r _ | Tpc_r _ -> None
let lazy_replica t i = match t.replicas.(i) with Lazy_r r -> Some r | Dsm_r _ | Tpc_r _ -> None
let twopc_replica t i = match t.replicas.(i) with Tpc_r r -> Some r | Dsm_r _ | Lazy_r _ -> None

let set_dsm_mode t mode =
  Array.iter
    (function Dsm_r r -> Dsm_replica.set_mode r mode | Lazy_r _ | Tpc_r _ -> ())
    t.replicas
