(** The healing-convergence oracle.

    {!Safety_checker} asks the weakest useful question after a faulty run:
    is every acknowledged update still held {e somewhere}? This oracle asks
    the stronger question that matters after the network heals: has the
    group actually {b converged} — every acknowledged update present on
    {e every} serving server, zero divergent items, and the system live
    again (a fresh probe transaction commits within a bound)?

    The intended protocol (the explorer's nemesis mode follows it):
    + run the schedule, nemesis faults included;
    + heal the network, clear any loss window, recover every server;
    + run to quiescence;
    + call {!certify}.

    A minority partition must {e stall} rather than diverge: while cut off
    it acknowledges nothing new (uniform delivery needs a quorum), and
    after the heal it catches up. A technique that instead serves divergent
    state from the minority side, or that cannot commit the probe after the
    heal, fails certification even if no acknowledged update was lost. *)

type missing = {
  server : int;  (** a serving server... *)
  tx : Db.Transaction.id;  (** ...that does not hold this acked update. *)
}

type verdict = {
  checked_at : Sim.Sim_time.t;
  acked_updates : int;  (** updates acknowledged as committed. *)
  serving_servers : int list;  (** servers serving when certification ran. *)
  missing : missing list;  (** (server, update) replication holes. *)
  divergent_items : int;  (** conflicting items across serving servers. *)
  probe_committed : bool;  (** the fresh probe committed within the bound. *)
  probe_ms : float option;  (** probe response time, when a response came. *)
  converged : bool;  (** no holes, no divergence, probe committed. *)
}

val certify :
  ?probe_bound:Sim.Sim_time.span -> ?probe_tx_id:int -> System.t -> verdict
(** [certify sys] submits the probe, {b runs the simulation} for
    [probe_bound] (default 2 s), and only then measures holes and
    divergence — deliberately in that order, because a server that sat out
    a partition catches up when the probe's fresh decision exposes its
    chosen-slot gap. Call it only after the analysis you want is done, or
    analyse first. [probe_tx_id] (default 1_000_000) must not collide with
    any workload transaction id. With no serving server the verdict is
    trivially not converged. *)

val pp : Format.formatter -> verdict -> unit
