type mode = Group_safe_mode | Group_one_safe_mode | Two_safe_mode | Very_safe_mode

let mode_level = function
  | Group_safe_mode -> Safety.Group_safe
  | Group_one_safe_mode -> Safety.Group_one_safe
  | Two_safe_mode -> Safety.Two_safe
  | Very_safe_mode -> Safety.Very_safe

(* Classical atomic broadcast serves the group-safe pair; the durable
   end-to-end broadcast serves the 2-safe pair. Runtime switching (paper
   §5.2) is possible within a family: the broadcast stack is shared. *)
let broadcast_family = function
  | Group_safe_mode | Group_one_safe_mode -> `Classical
  | Two_safe_mode | Very_safe_mode -> `End_to_end

(* What gets broadcast: the writeset, the delegate's certification snapshot
   (meaningful on every server because all certifiers see the same decided
   sequence) and the delegate's index for response routing. *)
module Cert_ws = struct
  type t = { ws : Db.Transaction.writeset; start : int; delegate : int }

  let equal a b = Int.equal a.ws.Db.Transaction.tx_id b.ws.Db.Transaction.tx_id
  let pp ppf v = Format.fprintf ppf "T%d@S%d" v.ws.Db.Transaction.tx_id v.delegate
end

(* State-transfer checkpoint: database values, the replica's committed view
   and the certification state — everything a joiner needs to continue the
   deterministic processing exactly where the donor stands. *)
module Snapshot = struct
  type t = {
    values : int array;
    view : (Db.Transaction.id * Db.Testable_tx.outcome) list;
    cert_version : int;
    cert_bindings : (int * int) list;
    pending : cert_ws list;
        (** writesets the donor had delivered but not yet processed — the
            joiner must process them itself, or a transaction that was only
            in a pipeline at snapshot time could vanish from the group. *)
  }
  and cert_ws = Cert_ws.t
end

module Abcast = Gcs.Atomic_broadcast.Make (Cert_ws) (Snapshot)
module E2e = Gcs.E2e_broadcast.Make (Cert_ws)

type Net.Message.payload +=
  | Logged of { tx : Db.Transaction.id; origin : int }
  | Logged_query of { tx : Db.Transaction.id }
        (** delegate asking a peer to re-announce durability: the one-shot
            [Logged] ack can be lost to a drop window, and a commit waiting
            on it would otherwise wedge forever. *)

type bcast = Classical of Abcast.t | End_to_end of E2e.t

type pending = { cws : Cert_ws.t; token : E2e.token option; enq_at : Sim.Sim_time.t }

(* Observability handles, resolved once at construction. [bcast_at] holds,
   per transaction this replica delegated, the instant its writeset was
   handed to the broadcast — consumed when the writeset comes back ordered,
   giving the broadcast-phase span. Keyed lookups only (never iterated), so
   it cannot leak enumeration order anywhere. *)
type obs_state = {
  o_tracer : Obs.Tracer.t;
  h_read : Obs.Histogram.t;  (* submit -> read phase done (delegate) *)
  h_abcast : Obs.Histogram.t;  (* broadcast -> ordered delivery (delegate) *)
  h_certify : Obs.Histogram.t;  (* delivery -> certification decision *)
  h_wal : Obs.Histogram.t;  (* decision -> commit record durable *)
  c_ack_before_disk : Obs.Registry.counter;  (* commit acks sent before WAL flush *)
  c_ack_after_disk : Obs.Registry.counter;  (* commit acks gated on the disk *)
  bcast_at : (int, Sim.Sim_time.t) Hashtbl.t;
}

type waiting_2safe = { mutable acks : Net.Node_id.Set.t }

type t = {
  server : Server.t;
  mutable mode : mode;
  trace : Sim.Trace.t;
  group : Net.Node_id.t list;
  cert : Db.Certifier.t;
  view : Db.Testable_tx.t;
  pending_responses : (int, Db.Testable_tx.outcome -> unit) Hashtbl.t;
  waiting_2safe : (int, waiting_2safe) Hashtbl.t;
  logged_local : (int, unit) Hashtbl.t;
      (* transactions this replica has durably logged (2-safe family);
         volatile cache of the WAL, rebuilt from it on restart. Keyed
         lookups only. *)
  mutable ack_poll_armed : bool;  (* a [Logged_query] sweep is scheduled *)
  mutable fd : Gcs.Failure_detector.t option;  (* 2-safe response rule only *)
  pipe : pending Queue.t;
  mutable pipe_busy : bool;
  mutable current : pending option;  (* popped from [pipe], still processing *)
  mutable ready : bool;
  mutable bcast : bcast option;
  apply_write_factor : float;
  certify_cpu : Sim.Sim_time.span;
  mutable cold_start_count : int;
  obs : obs_state;
}

let tr t kind attrs = Sim.Trace.record t.trace ~source:(Server.label t.server) ~kind attrs
let now t = Sim.Engine.now (Net.Network.engine (Net.Endpoint.network t.server.Server.endpoint))

(* Record one lifecycle phase [from_, until) into its histogram and, when
   tracing, as a complete span on this server's track. *)
let observe_phase t h ~name ~tx ~from_ ~until =
  let dur = Sim.Sim_time.diff until from_ in
  Obs.Histogram.add h (Sim.Sim_time.span_to_us dur);
  Obs.Tracer.complete t.obs.o_tracer ~name
    ~cat:(Safety.to_string (mode_level t.mode))
    ~tid:t.server.Server.index ~ts:from_ ~dur
    ~args:[ ("tx", string_of_int tx) ]
    ()

let outcome_of = function
  | Db.Certifier.Commit -> Db.Testable_tx.Committed
  | Db.Certifier.Abort -> Db.Testable_tx.Aborted

let outcome_string = function
  | Db.Testable_tx.Committed -> "committed"
  | Db.Testable_tx.Aborted -> "aborted"

let guard t k = Sim.Process.guard t.server.Server.process k

let respond t tx outcome =
  match Hashtbl.find_opt t.pending_responses tx with
  | None -> ()
  | Some k ->
    Hashtbl.remove t.pending_responses tx;
    tr t "respond" [ ("tx", string_of_int tx); ("outcome", outcome_string outcome) ];
    k outcome

let broadcast_cws t cws =
  match t.bcast with
  | Some (Classical a) -> Abcast.broadcast a cws
  | Some (End_to_end e) -> E2e.broadcast e cws
  | None -> ()

let ack_token t token = match (t.bcast, token) with
  | Some (End_to_end e), Some tok -> E2e.ack e tok
  | Some (End_to_end _), None | Some (Classical _), _ | None, _ -> ()

let is_leading t =
  match t.bcast with
  | Some (Classical a) -> Abcast.is_leading a
  | Some (End_to_end e) -> E2e.is_leading e
  | None -> false

let break_no_accept_retransmit t =
  match t.bcast with
  | Some (Classical a) -> Abcast.break_no_accept_retransmit a
  | Some (End_to_end e) -> E2e.break_no_accept_retransmit e
  | None -> ()

let node_of_index t index = List.find (fun n -> Net.Node_id.index n = index) t.group

(* ---- 2-safe response rule: answer once every available server logged ---- *)

let check_2safe_responses t =
  match t.fd with
  | None -> ()
  | Some fd ->
    (* 2-safe: logged on every *available* server (the detector's trusted
       set). Very safe: logged on every server, available or not — one
       crash blocks commits until the crashed server recovers and its
       replayed delivery is logged. *)
    let required =
      match t.mode with
      | Very_safe_mode -> t.group
      | Two_safe_mode | Group_safe_mode | Group_one_safe_mode ->
        Gcs.Failure_detector.trusted fd
    in
    let ready_txs =
      Analysis.Det_tbl.fold
        (fun tx w acc ->
          if List.for_all (fun n -> Net.Node_id.Set.mem n w.acks) required then tx :: acc else acc)
        t.waiting_2safe []
    in
    List.iter
      (fun tx ->
        Hashtbl.remove t.waiting_2safe tx;
        Obs.Registry.inc t.obs.c_ack_after_disk;
        respond t tx Db.Testable_tx.Committed)
      ready_txs

let note_logged t tx origin =
  match Hashtbl.find_opt t.waiting_2safe tx with
  | None -> ()
  | Some w ->
    w.acks <- Net.Node_id.Set.add (node_of_index t origin) w.acks;
    check_2safe_responses t

let announce_logged t cws =
  let self = t.server.Server.index in
  if cws.Cert_ws.delegate = self then note_logged t cws.Cert_ws.ws.Db.Transaction.tx_id self
  else
    Net.Endpoint.send t.server.Server.endpoint
      ~dst:(node_of_index t cws.Cert_ws.delegate)
      (Logged { tx = cws.Cert_ws.ws.Db.Transaction.tx_id; origin = self })

(* The [Logged] announcement is a single message: dropped, it would leave
   the delegate waiting on an ack the peer will never resend, wedging that
   commit forever even after the network heals. While any response is
   waiting on acks, the delegate sweeps the peers it has not heard from
   with [Logged_query]; peers answer from [logged_local], which the WAL
   backs across crashes. The sweep disarms itself once nothing waits, so a
   quiesced system goes quiet. *)

let ack_poll_interval = Sim.Sim_time.span_ms 120.

let rec arm_ack_poll t =
  if (not t.ack_poll_armed) && Hashtbl.length t.waiting_2safe > 0 then begin
    t.ack_poll_armed <- true;
    ignore
      (Sim.Process.after t.server.Server.process ack_poll_interval (fun () ->
           t.ack_poll_armed <- false;
           poll_missing_acks t;
           arm_ack_poll t))
  end

and poll_missing_acks t =
  let self = t.server.Server.index in
  let waiting = Analysis.Det_tbl.fold (fun tx w acc -> (tx, w) :: acc) t.waiting_2safe [] in
  List.iter
    (fun (tx, w) ->
      List.iter
        (fun n ->
          if Net.Node_id.index n <> self && not (Net.Node_id.Set.mem n w.acks) then
            Net.Endpoint.send t.server.Server.endpoint ~dst:n (Logged_query { tx }))
        t.group)
    waiting

(* ---- The in-order processing pipeline ---- *)

let rec pump t =
  if t.ready && not t.pipe_busy then begin
    match Queue.take_opt t.pipe with
    | None -> ()
    | Some item ->
      t.pipe_busy <- true;
      t.current <- Some item;
      process t item
  end

and advance t () =
  t.pipe_busy <- false;
  t.current <- None;
  pump t

and process t item =
  let cws = item.cws in
  let ws = cws.Cert_ws.ws in
  let tx = ws.Db.Transaction.tx_id in
  let db = t.server.Server.db in
  if Db.Testable_tx.already_processed t.view tx then begin
    (* Replayed or retransmitted duplicate: testable transactions make the
       redelivery harmless (paper §4.3). *)
    ack_token t item.token;
    (match Db.Testable_tx.find t.view tx with
     | Some outcome -> respond t tx outcome
     | None -> ());
    advance t ()
  end
  else
    Sim.Resource.request t.server.Server.cpus ~duration:t.certify_cpu
      (guard t (fun () ->
           let decided_at = now t in
           observe_phase t t.obs.h_certify ~name:"certify" ~tx ~from_:item.enq_at
             ~until:decided_at;
           (match Hashtbl.find_opt t.obs.bcast_at tx with
           | Some sent_at ->
             Hashtbl.remove t.obs.bcast_at tx;
             observe_phase t t.obs.h_abcast ~name:"abcast" ~tx ~from_:sent_at
               ~until:item.enq_at
           | None -> ());
           let decision = Db.Certifier.certify t.cert ~start:cws.Cert_ws.start ~ws in
           let outcome = outcome_of decision in
           Db.Testable_tx.record t.view tx outcome;
           tr t "decide" [ ("tx", string_of_int tx); ("outcome", outcome_string outcome) ];
           match decision with
           | Db.Certifier.Abort -> begin
               (* An abort needs no durability quorum: answer now and drop
                  the waiting entry so the ack sweep never polls for acks
                  that will never come. *)
               Hashtbl.remove t.waiting_2safe tx;
               respond t tx Db.Testable_tx.Aborted;
               match t.mode with
               | Two_safe_mode | Very_safe_mode ->
                 (* The abort decision is the processing of the message: log
                    it, then acknowledge successful delivery. *)
                 let token = item.token in
                 Db.Db_engine.log_commit db ~tx ~decision ~writes:[]
                   ~k:
                     (guard t (fun () ->
                          tr t "logged" [ ("tx", string_of_int tx) ];
                          Hashtbl.replace t.logged_local tx ();
                          ack_token t token));
                 advance t ()
               | Group_safe_mode | Group_one_safe_mode ->
                 Db.Db_engine.log_commit_quiet db ~tx ~decision ~writes:[];
                 advance t ()
             end
           | Db.Certifier.Commit ->
             let writes = ws.Db.Transaction.write_values in
             let count = List.length writes in
             Db.Db_engine.install_writes db writes;
             (match t.mode with
              | Group_safe_mode ->
                (* Fig. 8: answer at the decision; durability is the
                   group's business, disk work happens behind it. Only the
                   delegate holds the pending response, so only it counts
                   the acknowledgement. *)
                if Hashtbl.mem t.pending_responses tx then
                  Obs.Registry.inc t.obs.c_ack_before_disk;
                respond t tx Db.Testable_tx.Committed;
                Db.Db_engine.log_commit db ~tx ~decision ~writes
                  ~k:
                    (guard t (fun () ->
                         observe_phase t t.obs.h_wal ~name:"wal" ~tx ~from_:decided_at
                           ~until:(now t);
                         tr t "logged" [ ("tx", string_of_int tx) ]));
                Db.Db_engine.write_io db ~count ~factor:t.apply_write_factor
                  ~k:(guard t (advance t))
              | Group_one_safe_mode ->
                (* Fig. 2: the delegate answers after applying the writes
                   and flushing the decision record. *)
                let applied = ref false and flushed = ref false in
                let maybe_respond () =
                  if !applied && !flushed then begin
                    if Hashtbl.mem t.pending_responses tx then
                      Obs.Registry.inc t.obs.c_ack_after_disk;
                    respond t tx Db.Testable_tx.Committed
                  end
                in
                Db.Db_engine.log_commit db ~tx ~decision ~writes
                  ~k:
                    (guard t (fun () ->
                         observe_phase t t.obs.h_wal ~name:"wal" ~tx ~from_:decided_at
                           ~until:(now t);
                         tr t "logged" [ ("tx", string_of_int tx) ];
                         flushed := true;
                         maybe_respond ()));
                Db.Db_engine.write_io db ~count ~factor:1.0
                  ~k:
                    (guard t (fun () ->
                         applied := true;
                         maybe_respond ();
                         advance t ()))
              | Two_safe_mode | Very_safe_mode ->
                (* §4.3: apply, log, then acknowledge successful delivery
                   and tell the delegate this server has logged. *)
                let token = item.token in
                Db.Db_engine.write_io db ~count ~factor:1.0
                  ~k:
                    (guard t (fun () ->
                         Db.Db_engine.log_commit db ~tx ~decision ~writes
                           ~k:
                             (guard t (fun () ->
                                  observe_phase t t.obs.h_wal ~name:"wal" ~tx
                                    ~from_:decided_at ~until:(now t);
                                  tr t "logged" [ ("tx", string_of_int tx) ];
                                  Hashtbl.replace t.logged_local tx ();
                                  ack_token t token;
                                  announce_logged t cws));
                         advance t ())))))

let deliver t cws token =
  tr t "deliver" [ ("tx", string_of_int cws.Cert_ws.ws.Db.Transaction.tx_id) ];
  Queue.push { cws; token; enq_at = now t } t.pipe;
  pump t

(* ---- Recovery ---- *)

let rebuild_from_local_log t ~with_cert =
  let db = t.server.Server.db in
  let report = Db.Db_engine.recover_now db in
  if report.Db.Db_engine.repairs <> [] then
    tr t "wal_repair" [ ("repairs", string_of_int (List.length report.Db.Db_engine.repairs)) ];
  Db.Testable_tx.replace t.view (Db.Testable_tx.to_list (Db.Db_engine.testable db));
  Db.Certifier.reset t.cert;
  if with_cert then
    List.iter
      (fun r ->
        match r.Db.Db_engine.w_decision with
        | Db.Certifier.Commit ->
          Db.Certifier.note_commit t.cert ~write_items:(List.map fst r.Db.Db_engine.w_writes)
        | Db.Certifier.Abort -> ())
      (Db.Db_engine.wal_records db)

let get_snapshot t () =
  (* The log position handed to the joiner covers everything delivered to
     this replica, including writesets still queued (or mid-flight) in the
     processing pipeline; ship those unprocessed ones explicitly. The
     in-flight item may complete between capture and transfer — the
     pipeline's testable-transaction check makes re-including it safe. *)
  let unprocessed =
    let queued = List.map (fun p -> p.cws) (List.of_seq (Queue.to_seq t.pipe)) in
    let not_done cws =
      not (Db.Testable_tx.already_processed t.view cws.Cert_ws.ws.Db.Transaction.tx_id)
    in
    match t.current with
    | Some p when not_done p.cws -> p.cws :: queued
    | Some _ | None -> queued
  in
  {
    Snapshot.values = Db.Db_engine.values_snapshot t.server.Server.db;
    view = Db.Testable_tx.to_list t.view;
    cert_version = fst (Db.Certifier.export t.cert);
    cert_bindings = snd (Db.Certifier.export t.cert);
    pending = unprocessed;
  }

let install_snapshot t (s : Snapshot.t) =
  Db.Db_engine.install_snapshot t.server.Server.db s.Snapshot.values;
  Db.Testable_tx.replace t.view s.Snapshot.view;
  Db.Certifier.import t.cert ~version:s.Snapshot.cert_version ~bindings:s.Snapshot.cert_bindings;
  List.iter (fun cws -> Queue.push { cws; token = None; enq_at = now t } t.pipe) s.Snapshot.pending;
  tr t "state_transfer" [];
  t.ready <- true;
  pump t

let cold_start t () =
  t.cold_start_count <- t.cold_start_count + 1;
  tr t "cold_start" [];
  (* Restart from this server's own durable state; the group's volatile
     knowledge is gone (paper Fig. 5). The certifier restarts empty on
     every member, consistently, since the ordering log also restarts. *)
  rebuild_from_local_log t ~with_cert:false;
  t.ready <- true;
  pump t

let on_kill t () =
  t.ready <- false;
  t.pipe_busy <- false;
  t.current <- None;
  Queue.clear t.pipe;
  Hashtbl.reset t.pending_responses;
  Hashtbl.reset t.waiting_2safe;
  Hashtbl.reset t.logged_local;
  t.ack_poll_armed <- false;
  Db.Certifier.reset t.cert;
  Db.Testable_tx.reset t.view

let on_restart_two_safe t () =
  (* Static crash recovery: rebuild locally (values, committed view and
     certification state all follow from the WAL, whose order is delivery
     order); the end-to-end broadcast replays whatever was not yet
     successfully delivered on top of it. *)
  rebuild_from_local_log t ~with_cert:true;
  (* Everything in the WAL is durably logged here: repopulate the table the
     [Logged_query] handler answers from, so a delegate still waiting on
     this server's ack can complete after the restart. *)
  List.iter
    (fun r -> Hashtbl.replace t.logged_local r.Db.Db_engine.w_tx ())
    (Db.Db_engine.wal_records t.server.Server.db);
  tr t "recovered_local" [];
  t.ready <- true;
  pump t

(* ---- Submission (delegate side) ---- *)

let serving t = Sim.Process.alive t.server.Server.process && t.ready

let submit t tx ~on_response =
  if serving t then begin
    let id = tx.Db.Transaction.id in
    if Db.Transaction.is_update tx && Db.Db_engine.disk_full t.server.Server.db then begin
      (* Graceful degradation under a full disk: refuse new update work
         with a distinct abort instead of wedging the commit pipeline;
         reads and group traffic continue. *)
      tr t "disk_full_abort" [ ("tx", string_of_int id) ];
      Db.Db_engine.note_degraded t.server.Server.db;
      on_response Db.Testable_tx.Aborted
    end
    else begin
    tr t "submit" [ ("tx", string_of_int id) ];
    let submitted_at = now t in
    Hashtbl.replace t.pending_responses id on_response;
    let read_items = Db.Transaction.read_set tx in
    (* The certification snapshot is taken when the read phase begins:
       every item read afterwards is validated against all writesets that
       commit after this point, which is the conservative direction. *)
    let start = Db.Certifier.current_version t.cert in
    Db.Db_engine.read_seq t.server.Server.db ~items:read_items
      ~k:
        (guard t (fun () ->
             observe_phase t t.obs.h_read ~name:"read" ~tx:id ~from_:submitted_at
               ~until:(now t);
             if Db.Transaction.is_update tx then begin
               let cws =
                 {
                   Cert_ws.ws = Db.Transaction.to_writeset tx;
                   start;
                   delegate = t.server.Server.index;
                 }
               in
               (match t.mode with
                | Two_safe_mode | Very_safe_mode ->
                  Hashtbl.replace t.waiting_2safe id { acks = Net.Node_id.Set.empty };
                  arm_ack_poll t
                | Group_safe_mode | Group_one_safe_mode -> ());
               tr t "broadcast" [ ("tx", string_of_int id) ];
               Hashtbl.replace t.obs.bcast_at id (now t);
               broadcast_cws t cws
             end
             else respond t id Db.Testable_tx.Committed))
    end
  end

(* ---- Construction ---- *)

let create server ~group ~mode ~params ?fd_config ?(apply_write_factor = 0.625) ?uniform
    ?tuning ?delivery_delay ?registry ?tracer ~trace () =
  ignore params;
  let delay_gate =
    match delivery_delay with
    | None -> Gcs.Delivery_delay.pass
    | Some delay -> Gcs.Delivery_delay.create server.Server.process ~delay
  in
  let registry = match registry with Some r -> r | None -> Obs.Registry.create () in
  let obs =
    {
      o_tracer = (match tracer with Some tr -> tr | None -> Obs.Tracer.create ~enabled:false ());
      h_read = Obs.Registry.histogram registry "phase.read_us";
      h_abcast = Obs.Registry.histogram registry "phase.broadcast_us";
      h_certify = Obs.Registry.histogram registry "phase.certify_us";
      h_wal = Obs.Registry.histogram registry "phase.wal_us";
      c_ack_before_disk = Obs.Registry.counter registry "txn.ack_before_disk";
      c_ack_after_disk = Obs.Registry.counter registry "txn.ack_after_disk";
      bcast_at = Hashtbl.create 64;
    }
  in
  let t =
    {
      server;
      mode;
      trace;
      group = List.sort Net.Node_id.compare group;
      cert = Db.Certifier.create ();
      view = Db.Testable_tx.create ();
      pending_responses = Hashtbl.create 64;
      waiting_2safe = Hashtbl.create 64;
      logged_local = Hashtbl.create 64;
      ack_poll_armed = false;
      fd = None;
      pipe = Queue.create ();
      pipe_busy = false;
      current = None;
      ready = true;
      bcast = None;
      apply_write_factor;
      certify_cpu = Sim.Sim_time.span_ms 0.1;
      cold_start_count = 0;
      obs;
    }
  in
  let endpoint = server.Server.endpoint in
  (match broadcast_family mode with
   | `Classical ->
     let ab =
       Abcast.create endpoint ~group ?fd_config ?uniform ?tuning ~delivery_delay:delay_gate
         ~metrics:registry
         ~deliver:(fun cws -> deliver t cws None)
         ~get_snapshot:(get_snapshot t) ~install_snapshot:(install_snapshot t)
         ~cold_start:(cold_start t) ()
     in
     t.bcast <- Some (Classical ab);
     (* During a rejoin the broadcast layer drives recovery; block the
        pipeline until it finishes. *)
     Sim.Process.on_restart server.Server.process (fun () -> t.ready <- false)
   | `End_to_end ->
     let e2e =
       E2e.create endpoint ~group ~disk:server.Server.disks
         ~write_time:(fun () ->
           Sim.Rng.uniform_span server.Server.rng
             (Db.Db_engine.config server.Server.db).Db.Db_engine.io_time_min
             (Db.Db_engine.config server.Server.db).Db.Db_engine.io_time_max)
         ?fd_config ?tuning ~delivery_delay:delay_gate ~metrics:registry
         ~deliver:(fun token cws -> deliver t cws (Some token))
         ()
     in
     t.bcast <- Some (End_to_end e2e);
     t.fd <- Some (Gcs.Failure_detector.create endpoint ~peers:group ?config:fd_config ());
     (match t.fd with
      | Some fd -> Gcs.Failure_detector.on_change fd (fun () -> check_2safe_responses t)
      | None -> ());
     Sim.Process.on_restart server.Server.process (fun () -> on_restart_two_safe t ()));
  Sim.Process.on_kill server.Server.process (fun () -> on_kill t ());
  Net.Endpoint.add_handler endpoint (fun message ->
      match message.Net.Message.payload with
      | Logged { tx; origin } ->
        note_logged t tx origin;
        true
      | Logged_query { tx } ->
        if Hashtbl.mem t.logged_local tx then
          Net.Endpoint.send endpoint ~dst:message.Net.Message.src
            (Logged { tx; origin = server.Server.index });
        true
      | _ -> false);
  t

let mode t = t.mode

let set_mode t new_mode =
  if broadcast_family new_mode <> broadcast_family t.mode then
    invalid_arg
      "Dsm_replica.set_mode: can only switch within a broadcast family (group-safe <-> \
       group-1-safe, or 2-safe <-> very-safe)";
  t.mode <- new_mode;
  tr t "mode_switch" [ ("to", Safety.to_string (mode_level new_mode)) ];
  (* A relaxation (very-safe -> 2-safe) may unblock waiting responses. *)
  check_2safe_responses t

let committed t id =
  match Db.Testable_tx.find t.view id with
  | Some Db.Testable_tx.Committed -> true
  | Some Db.Testable_tx.Aborted | None -> false

let committed_count t = Db.Testable_tx.committed_count t.view
let certifier t = t.cert
let cold_starts t = t.cold_start_count
let pipeline_depth t = Queue.length t.pipe
