type t = {
  index : int;
  id : Net.Node_id.t;
  process : Sim.Process.t;
  cpus : Sim.Resource.t;
  disks : Sim.Resource.t;
  endpoint : Net.Endpoint.t;
  db : Db.Db_engine.t;
  rng : Sim.Rng.t;
}

let create ?registry engine network params ~index =
  let label = Printf.sprintf "S%d" index in
  let id = Net.Node_id.make ~index ~label in
  let process = Sim.Process.create engine ~name:label in
  let cpus =
    Sim.Resource.create engine ~name:(label ^ ".cpu")
      ~servers:params.Workload.Params.cpus_per_server
  in
  let disks =
    Sim.Resource.create engine ~name:(label ^ ".disk")
      ~servers:params.Workload.Params.disks_per_server
  in
  let endpoint = Net.Endpoint.attach network ~id ~process ~cpu:cpus () in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let db =
    Db.Db_engine.create ?registry engine ~process ~cpus ~disks ~rng:(Sim.Rng.split rng)
      (Workload.Params.db_config params)
  in
  Sim.Process.on_kill process (fun () ->
      Sim.Resource.reset cpus;
      Sim.Resource.reset disks);
  { index; id; process; cpus; disks; endpoint; db; rng }

let crash t = Sim.Process.kill t.process
let restart t = Sim.Process.restart t.process
let alive t = Sim.Process.alive t.process
let label t = Net.Node_id.label t.id
