(** The client/server wire protocol.

    Clients are ordinary network nodes and servers answer their requests; a
    reply lost to a crash is the client's problem (timeout and retry —
    testable transactions make retries harmless). Shared between {!System}
    (server side) and {!Client}. *)

type Net.Message.payload +=
  | Client_request of { tx : Db.Transaction.t }
      (** Execute [tx] on the delegate server and reply with its outcome. *)
  | Client_reply of { tx_id : Db.Transaction.id; outcome : Db.Testable_tx.outcome }
      (** The recorded outcome for [tx_id] — answered from the testable
          transaction log on retries, so execution stays exactly-once. *)
